type t = {
  sync : Sync.t;
  base : int;
  size : int;
  mutable top : int;
  mutable committed_end : int;
  trim_threshold : int;
}

let ( let* ) = Result.bind

(* GLIBC places each arena heap at a HEAP_MAX_SIZE-aligned address (64 MiB
   by default). Reproducing that matters: first-fit packing would make the
   arenas' PROT_NONE regions adjacent, the kernel would merge them into one
   giant VMA shared by every thread, and the "refined" lock ranges would
   stop being arena-local. *)
let heap_align = 64 * 1024 * 1024

let region_base = 1 lsl 32

let next_slot = Atomic.make 0

let create sync ?(size = 4 * 1024 * 1024) ?(trim_threshold = 128 * 1024) () =
  let size = Page.align_up size and trim_threshold = Page.align_up trim_threshold in
  if size > heap_align then Error Mm_ops.Einval
  else begin
    let rec reserve () =
      let slot = Atomic.fetch_and_add next_slot 1 in
      let addr = region_base + (slot * heap_align) in
      match Sync.mmap sync ~addr ~len:size ~prot:Prot.none () with
      | Ok base -> Ok base
      | Error Mm_ops.Eexist -> reserve () (* slot taken in another mm *)
      | Error e -> Error e
    in
    let* base = reserve () in
    Ok { sync; base; size; top = base; committed_end = base; trim_threshold }
  end

let base t = t.base

let size t = t.size

let committed_bytes t = t.committed_end - t.base

let used_bytes t = t.top - t.base

let align8 n = (n + 7) land lnot 7

let malloc t n =
  if n <= 0 then Error Mm_ops.Einval
  else begin
    let n = align8 n in
    if t.top + n > t.base + t.size then Error Mm_ops.Enomem
    else begin
      let* () =
        if t.top + n <= t.committed_end then Ok ()
        else begin
          (* Commit more pages: the expand boundary shift of Figure 2. *)
          let new_end = Page.align_up (t.top + n) in
          let* () =
            Sync.mprotect t.sync ~addr:t.committed_end
              ~len:(new_end - t.committed_end) ~prot:Prot.read_write
          in
          t.committed_end <- new_end;
          Ok ()
        end
      in
      let addr = t.top in
      t.top <- t.top + n;
      Ok addr
    end
  end

let touch t ~addr ~len =
  if len <= 0 then Ok ()
  else begin
    let first = Page.align_down addr and last = Page.align_down (addr + len - 1) in
    let rec go page =
      if page > last then Ok ()
      else
        match Sync.page_fault t.sync ~addr:page ~access:Prot.Write with
        | Ok () -> go (page + Page.size)
        | Error `Segv -> Error `Segv
    in
    go first
  end

let malloc_touched t n =
  let* addr = malloc t n in
  match touch t ~addr ~len:n with
  | Ok () -> Ok addr
  | Error `Segv -> Error Mm_ops.Einval (* cannot happen: we just committed *)

let reset t =
  t.top <- t.base;
  if t.committed_end - t.base > t.trim_threshold then begin
    (* Shrink back: the tail of the RW VMA returns to PROT_NONE. *)
    let keep_end = t.base + t.trim_threshold in
    let* () =
      Sync.mprotect t.sync ~addr:keep_end ~len:(t.committed_end - keep_end)
        ~prot:Prot.none
    in
    t.committed_end <- keep_end;
    Ok ()
  end
  else Ok ()

let destroy t = Sync.munmap t.sync ~addr:t.base ~len:t.size
